// bloom87: bit-level packing helpers.
//
// Bloom's protocol stores a (tag-bit, value) pair that must be written with a
// single atomic store when the substrate is a hardware word. These helpers
// pack small trivially-copyable values together with a tag bit into one
// 64-bit word, and check at compile time that the value actually fits.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <type_traits>

namespace bloom87 {

/// True when T can be round-tripped through a 64-bit word alongside a tag bit
/// (i.e. fits in 63 value bits when it is <= 7 bytes, or exactly uses
/// bit_cast when it is an 8-byte type -- then the tag needs its own word and
/// packing is not available).
template <typename T>
concept word_packable =
    std::is_trivially_copyable_v<T> && sizeof(T) <= 7 && std::is_object_v<T>;

/// Packs `value` into the low bits and `tag` into bit 63 of a 64-bit word.
template <word_packable T>
constexpr std::uint64_t pack_tagged(T value, bool tag) noexcept {
    std::uint64_t word = 0;
    // memcpy (not bit_cast) because sizeof(T) may be < 8.
    if (std::is_constant_evaluated()) {
        // Constant evaluation path only supports integral T.
        if constexpr (std::is_integral_v<T> || std::is_enum_v<T>) {
            word = static_cast<std::uint64_t>(
                static_cast<std::make_unsigned_t<T>>(value));
        }
    } else {
        std::memcpy(&word, &value, sizeof(T));
    }
    if (tag) word |= (1ULL << 63);
    return word;
}

/// Inverse of pack_tagged: extracts the value.
template <word_packable T>
constexpr T unpack_value(std::uint64_t word) noexcept {
    word &= ~(1ULL << 63);
    if (std::is_constant_evaluated()) {
        if constexpr (std::is_integral_v<T> || std::is_enum_v<T>) {
            return static_cast<T>(word);
        }
    }
    T value{};
    std::memcpy(&value, &word, sizeof(T));
    return value;
}

/// Inverse of pack_tagged: extracts the tag bit.
constexpr bool unpack_tag(std::uint64_t word) noexcept {
    return (word >> 63) != 0;
}

/// Exclusive-or of two boolean "tag bits"; the paper's mod-2 sum.
constexpr bool tag_xor(bool a, bool b) noexcept { return a != b; }

}  // namespace bloom87
