#include "modelcheck/explorer.hpp"

#include <sstream>
#include <unordered_set>

#include "linearizability/exhaustive.hpp"
#include "linearizability/regularity.hpp"

namespace bloom87::mc {
namespace {

std::uint64_t hash_words(const std::vector<std::uint64_t>& words) {
    // FNV-1a over 64-bit words, then a finalizer. One collision in the
    // visited set only costs a false prune; verdict memoization uses the
    // same hash but stores full verdicts keyed by it (collision odds at the
    // scale of these explorations are negligible).
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::uint64_t w : words) {
        h ^= w;
        h *= 0x100000001b3ULL;
    }
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return h;
}

class dfs_engine {
public:
    dfs_engine(const explore_config& cfg) : cfg_(cfg) {}

    void run(const sim_state& s, explore_result& out) {
        visit(s, out);
    }

private:
    void visit(const sim_state& s, explore_result& out) {
        if (out.truncated) return;
        if (++out.states_explored > cfg_.max_states) {
            out.truncated = true;
            return;
        }
        if (cfg_.stop_at_first_violation && !out.property_holds) return;

        fp_.clear();
        s.fingerprint(fp_);
        if (!visited_.insert(hash_words(fp_)).second) {
            ++out.memo_hits;
            return;
        }

        // Count the available (process, choice) moves; remember the last.
        std::size_t single_proc = 0;
        int total_moves = 0;
        for (std::size_t p = 0; p < s.procs.size(); ++p) {
            if (s.procs[p]->done(s)) continue;
            total_moves += s.procs[p]->fanout(s);
            single_proc = p;
        }
        if (total_moves == 0) {
            leaf(s, out);
            return;
        }
        if (total_moves == 1) {
            // Deterministic fast path: run the forced moves on ONE copy
            // instead of copying per step -- long forced stretches dominate
            // real explorations.
            sim_state work(s);
            for (;;) {
                work.procs[single_proc]->step(work, 0);
                if (out.truncated) return;
                if (++out.states_explored > cfg_.max_states) {
                    out.truncated = true;
                    return;
                }
                fp_.clear();
                work.fingerprint(fp_);
                if (!visited_.insert(hash_words(fp_)).second) {
                    ++out.memo_hits;
                    return;
                }
                int moves = 0;
                for (std::size_t p = 0; p < work.procs.size(); ++p) {
                    if (work.procs[p]->done(work)) continue;
                    moves += work.procs[p]->fanout(work);
                    single_proc = p;
                }
                if (moves == 0) {
                    leaf(work, out);
                    return;
                }
                if (moves > 1) break;  // branching resumes below
            }
            expand(work, out);
            return;
        }
        expand(s, out);
    }

    // Branch over every (process, choice) pair of a state already counted
    // and memoized by visit().
    void expand(const sim_state& s, explore_result& out) {
        for (std::size_t p = 0; p < s.procs.size(); ++p) {
            if (s.procs[p]->done(s)) continue;
            const int fanout = s.procs[p]->fanout(s);
            for (int choice = 0; choice < fanout; ++choice) {
                sim_state next(s);
                next.procs[p]->step(next, choice);
                visit(next, out);
                if (out.truncated) return;
                if (cfg_.stop_at_first_violation && !out.property_holds) return;
            }
        }
    }

    void leaf(const sim_state& s, explore_result& out) {
        ++out.leaves;
        fp_.clear();
        // History-only fingerprint for verdict memoization.
        for (const operation& o : s.hist) {
            fp_.push_back((static_cast<std::uint64_t>(
                               static_cast<std::uint16_t>(o.id.processor))
                           << 40) |
                          (static_cast<std::uint64_t>(o.id.op) << 8) |
                          static_cast<std::uint64_t>(o.kind));
            fp_.push_back(static_cast<std::uint64_t>(o.value));
            fp_.push_back(o.invoked);
            fp_.push_back(o.responded);
        }
        const std::uint64_t h = hash_words(fp_);
        if (!checked_histories_.insert(h).second) return;
        ++out.distinct_histories;

        std::string diagnosis;
        bool ok = true;
        if (cfg_.prop == property::atomic) {
            const exhaustive_result res = check_exhaustive(s.hist, cfg_.initial);
            if (!res.ok()) {
                ok = false;
                diagnosis = "checker defect: " + *res.defect;
            } else if (!res.linearizable) {
                ok = false;
                diagnosis = "history is not linearizable";
            }
        } else if (cfg_.prop == property::regular_swmr) {
            const regularity_result res = check_regular_swmr(s.hist, cfg_.initial);
            if (!res.regular) {
                ok = false;
                diagnosis = res.diagnosis;
            }
        } else {
            const regularity_result res = check_safe_swmr(s.hist, cfg_.initial);
            if (!res.regular) {
                ok = false;
                diagnosis = res.diagnosis;
            }
        }
        if (!ok) {
            ++out.violations;
            out.property_holds = false;
            if (!out.first_violation.has_value()) {
                out.first_violation = violation{s.hist, std::move(diagnosis)};
            }
        }
    }

    const explore_config& cfg_;
    std::unordered_set<std::uint64_t> visited_;
    std::unordered_set<std::uint64_t> checked_histories_;
    std::vector<std::uint64_t> fp_;
};

}  // namespace

explore_result explore(const sim_state& initial_state, const explore_config& cfg) {
    explore_result out;
    dfs_engine engine(cfg);
    engine.run(initial_state, out);
    return out;
}

std::string format_operations(const std::vector<operation>& ops) {
    std::ostringstream oss;
    for (const operation& op : ops) {
        oss << "proc " << op.id.processor << " "
            << (op.kind == op_kind::write ? "write(" : "read(") << op.value
            << ") [" << op.invoked << ", ";
        if (op.complete()) {
            oss << op.responded;
        } else {
            oss << "pending";
        }
        oss << ")\n";
    }
    return oss.str();
}

}  // namespace bloom87::mc
