// bloom87: the sequential register specification.
//
// The "register property" (paper, Section 1): a read returns the value
// written by the latest preceding write, or the initial value if there is
// none. Both checkers reduce atomicity to "does some reordering of the
// operations, consistent with real-time precedence, satisfy this spec".
#pragma once

#include <vector>

#include "histories/events.hpp"
#include "histories/history.hpp"

namespace bloom87 {

/// Applies a sequential schedule of operations to the register spec.
/// Returns true iff every read returns the latest written value (or the
/// initial value before any write).
[[nodiscard]] inline bool satisfies_register_property(
    const std::vector<const operation*>& sequence, value_t initial) {
    value_t current = initial;
    for (const operation* op : sequence) {
        if (op->kind == op_kind::write) {
            current = op->value;
        } else if (op->value != current) {
            return false;
        }
    }
    return true;
}

}  // namespace bloom87
