// Tests for the multi-reader construction (swmr_from_swsr) and the full
// register-simulation stack: safe slots -> Simpson SWSR -> SWMR -> Bloom's
// two-writer register.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/two_writer.hpp"
#include "histories/event_log.hpp"
#include "histories/workload.hpp"
#include "linearizability/fast_register.hpp"
#include "registers/swmr_from_swsr.hpp"
#include "util/sync.hpp"

namespace bloom87 {
namespace {

TEST(SwmrFromSwsr, InitialValueOnEveryPort) {
    swmr_from_swsr<std::int64_t> reg(tagged<std::int64_t>{42, true}, 4);
    for (std::size_t i = 0; i < 4; ++i) {
        auto port = reg.make_reader_port(i);
        const auto got = port.read();
        EXPECT_EQ(got.value, 42);
        EXPECT_TRUE(got.tag);
    }
}

TEST(SwmrFromSwsr, WritesVisibleOnEveryPort) {
    swmr_from_swsr<std::int64_t> reg(tagged<std::int64_t>{0, false}, 3);
    auto p0 = reg.make_reader_port(0);
    auto p1 = reg.make_reader_port(1);
    auto p2 = reg.make_reader_port(2);
    for (std::int64_t v = 1; v <= 10; ++v) {
        reg.write(tagged<std::int64_t>{v, (v & 1) != 0});
        EXPECT_EQ(p0.read().value, v);
        EXPECT_EQ(p1.read().value, v);
        EXPECT_EQ(p2.read().value, v);
        EXPECT_EQ(p2.read().tag, (v & 1) != 0);
    }
}

TEST(SwmrFromSwsr, RegisterBudgetMatchesConstruction) {
    // n value registers + n*(n-1) report registers.
    for (std::size_t n : {1u, 2u, 4u, 7u}) {
        swmr_from_swsr<std::int64_t> reg(tagged<std::int64_t>{0, false}, n);
        EXPECT_EQ(reg.swsr_register_count(), n + n * (n - 1));
    }
}

TEST(SwmrFromSwsr, PerReaderMonotonicityTorture) {
    constexpr int readers = 3;
    constexpr std::int64_t writes = 60000;
    swmr_from_swsr<std::int64_t> reg(tagged<std::int64_t>{0, false}, readers);
    start_gate gate;
    std::atomic<bool> done{false};
    std::atomic<int> violations{0};
    std::vector<std::thread> pool;
    for (int r = 0; r < readers; ++r) {
        pool.emplace_back([&, r] {
            auto port = reg.make_reader_port(static_cast<std::size_t>(r));
            gate.wait();
            std::int64_t last = -1;
            while (!done.load(std::memory_order_acquire)) {
                const std::int64_t v = port.read().value;
                if (v < last) violations.fetch_add(1);
                if (v > last) last = v;
            }
        });
    }
    std::thread writer([&] {
        gate.wait();
        for (std::int64_t v = 1; v <= writes; ++v) {
            reg.write(tagged<std::int64_t>{v, false});
        }
        done.store(true, std::memory_order_release);
    });
    gate.open();
    writer.join();
    for (auto& t : pool) t.join();
    EXPECT_EQ(violations.load(), 0);
}

// Cross-reader atomicity: record the external schedule by hand and check
// with the polynomial register checker. This is the property the report
// round exists for (no new-old inversion BETWEEN readers).
TEST(SwmrFromSwsr, CrossReaderHistoriesAtomic) {
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
        constexpr int readers = 3;
        swmr_from_swsr<value_t> reg(tagged<value_t>{0, false}, readers);
        event_log log(1 << 15);
        start_gate gate;
        std::atomic<bool> done{false};

        std::thread writer([&] {
            gate.wait();
            for (std::uint32_t i = 0; i < 1500; ++i) {
                const value_t v = unique_value(0, i);
                event e;
                e.kind = event_kind::sim_invoke_write;
                e.processor = 0;
                e.op = i;
                e.value = v;
                log.append(e);
                reg.write(tagged<value_t>{v, false});
                e.kind = event_kind::sim_respond_write;
                log.append(e);
            }
            done.store(true, std::memory_order_release);
        });
        std::vector<std::thread> pool;
        for (int r = 0; r < readers; ++r) {
            pool.emplace_back([&, r] {
                auto port = reg.make_reader_port(static_cast<std::size_t>(r));
                gate.wait();
                // Bounded so the log cannot overflow.
                for (op_index op = 0;
                     op < 3000 && !done.load(std::memory_order_acquire); ++op) {
                    event e;
                    e.kind = event_kind::sim_invoke_read;
                    e.processor = static_cast<processor_id>(2 + r);
                    e.op = op;
                    log.append(e);
                    const value_t v = port.read().value;
                    e.kind = event_kind::sim_respond_read;
                    e.value = v;
                    log.append(e);
                }
            });
        }
        gate.open();
        writer.join();
        for (auto& t : pool) t.join();

        ASSERT_FALSE(log.overflowed());
        parse_result parsed = parse_history(log.snapshot(), 0);
        ASSERT_TRUE(parsed.ok()) << parsed.error->message;
        const auto res = check_fast(parsed.hist.ops, 0);
        ASSERT_TRUE(res.ok()) << *res.defect;
        EXPECT_TRUE(res.linearizable) << "seed " << seed << ": " << res.diagnosis;
    }
}

// ---------------------------------------------------------------------------
// The full stack: Bloom's two-writer register whose "real" registers are
// themselves simulated from SWSR four-slot registers.
// ---------------------------------------------------------------------------

using full_stack =
    two_writer_register<std::int64_t, ported_substrate<std::int64_t>>;

full_stack make_stack_register(std::int64_t initial, std::size_t sim_readers) {
    return full_stack(initial,
                      [sim_readers](tagged<std::int64_t> init, int reg_index) {
                          return ported_substrate<std::int64_t>(init, sim_readers,
                                                                reg_index);
                      });
}

TEST(FullStack, SequentialSemantics) {
    auto reg = make_stack_register(7, 2);
    auto rd = reg.make_reader(2);
    EXPECT_EQ(rd.read(), 7);
    reg.writer0().write(10);
    EXPECT_EQ(rd.read(), 10);
    reg.writer1().write(11);
    EXPECT_EQ(rd.read(), 11);
    EXPECT_EQ(reg.writer0().read(), 11);
    EXPECT_EQ(reg.writer1().read(), 11);
}

TEST(FullStack, AlternatingWritersLastWriteWins) {
    auto reg = make_stack_register(0, 1);
    auto rd = reg.make_reader(2);
    for (std::int64_t v = 1; v <= 30; ++v) {
        if (v % 2 == 0) {
            reg.writer0().write(v);
        } else {
            reg.writer1().write(v);
        }
        EXPECT_EQ(rd.read(), v);
    }
}

TEST(FullStack, ConcurrentHistoriesAtomic) {
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
        constexpr std::size_t sim_readers = 2;
        auto reg = make_stack_register(0, sim_readers);
        event_log log(1 << 15);
        reg.set_external_log(&log);
        start_gate gate;
        std::atomic<bool> done{false};

        std::thread w0([&] {
            gate.wait();
            for (std::uint32_t i = 0; i < 800; ++i) {
                reg.writer0().write(unique_value(0, i));
            }
        });
        std::thread w1([&] {
            gate.wait();
            for (std::uint32_t i = 0; i < 800; ++i) {
                reg.writer1().write(unique_value(1, i));
            }
        });
        std::vector<std::thread> pool;
        for (std::size_t r = 0; r < sim_readers; ++r) {
            pool.emplace_back([&, r] {
                auto rd = reg.make_reader(static_cast<processor_id>(2 + r));
                gate.wait();
                // Bounded so the log cannot overflow.
                for (int i = 0; i < 2500 && !done.load(std::memory_order_acquire);
                     ++i) {
                    (void)rd.read();
                }
            });
        }
        gate.open();
        w0.join();
        w1.join();
        done.store(true, std::memory_order_release);
        for (auto& t : pool) t.join();

        ASSERT_FALSE(log.overflowed());
        parse_result parsed = parse_history(log.snapshot(), 0);
        ASSERT_TRUE(parsed.ok()) << parsed.error->message;
        const auto res = check_fast(parsed.hist.ops, 0);
        ASSERT_TRUE(res.ok()) << *res.defect;
        EXPECT_TRUE(res.linearizable) << "seed " << seed << ": " << res.diagnosis;
    }
}

TEST(FullStack, CrashToleranceSurvivesTheWholeStack) {
    auto reg = make_stack_register(0, 1);
    auto rd = reg.make_reader(2);
    reg.writer0().write(5);
    reg.writer1().write_crashed(99, crash_point::after_read);
    EXPECT_EQ(rd.read(), 5);  // crashed write invisible
    reg.writer1().write_crashed(100, crash_point::after_write);
    EXPECT_EQ(rd.read(), 100);  // crashed-after-write fully visible
    reg.writer0().write(6);
    EXPECT_EQ(rd.read(), 6);  // everyone still live
}

}  // namespace
}  // namespace bloom87
