// Tests for src/linearizability: exhaustive checker, fast register checker,
// regularity checker -- hand-built histories with known verdicts, plus
// random cross-validation of fast vs exhaustive.
#include <gtest/gtest.h>

#include <vector>

#include "linearizability/exhaustive.hpp"
#include "linearizability/fast_register.hpp"
#include "linearizability/normalize.hpp"
#include "linearizability/regularity.hpp"
#include "util/rng.hpp"

namespace bloom87 {
namespace {

operation make_op(processor_id proc, op_index idx, op_kind kind, value_t v,
                  event_pos inv, event_pos resp) {
    operation op;
    op.id = op_id{proc, idx};
    op.kind = kind;
    op.value = v;
    op.invoked = inv;
    op.responded = resp;
    return op;
}

// ---------------------------------------------------------------------------
// Hand-built verdicts.
// ---------------------------------------------------------------------------

TEST(Exhaustive, EmptyHistoryIsAtomic) {
    EXPECT_TRUE(check_exhaustive({}, 0).linearizable);
}

TEST(Exhaustive, SequentialReadsAndWrites) {
    std::vector<operation> h{
        make_op(0, 0, op_kind::write, 5, 0, 1),
        make_op(2, 0, op_kind::read, 5, 2, 3),
        make_op(1, 0, op_kind::write, 9, 4, 5),
        make_op(2, 1, op_kind::read, 9, 6, 7),
    };
    EXPECT_TRUE(check_exhaustive(h, 0).linearizable);
}

TEST(Exhaustive, StaleReadRejected) {
    std::vector<operation> h{
        make_op(0, 0, op_kind::write, 5, 0, 1),
        make_op(2, 0, op_kind::read, 0, 2, 3),  // reads initial after write done
    };
    EXPECT_FALSE(check_exhaustive(h, 0).linearizable);
}

TEST(Exhaustive, OverlappingWriteMayOrMayNotBeSeen) {
    // Read overlaps the write: both outcomes are atomic.
    for (value_t seen : {0, 5}) {
        std::vector<operation> h{
            make_op(0, 0, op_kind::write, 5, 0, 10),
            make_op(2, 0, op_kind::read, seen, 1, 2),
        };
        EXPECT_TRUE(check_exhaustive(h, 0).linearizable) << "seen=" << seen;
    }
}

TEST(Exhaustive, NewOldInversionRejected) {
    // r1 sees the new value, then a later (non-overlapping) r2 sees the old:
    // the classic atomicity violation.
    std::vector<operation> h{
        make_op(0, 0, op_kind::write, 5, 0, 11),
        make_op(2, 0, op_kind::read, 5, 1, 2),
        make_op(3, 0, op_kind::read, 0, 3, 4),
    };
    EXPECT_FALSE(check_exhaustive(h, 0).linearizable);
}

TEST(Exhaustive, ValueReappearanceRejected) {
    // Figure 5's essence: c is written, overwritten by d (observed), then a
    // later read sees c again.
    std::vector<operation> h{
        make_op(0, 0, op_kind::write, 100, 0, 1),   // 'c'
        make_op(1, 0, op_kind::write, 200, 2, 3),   // 'd'
        make_op(2, 0, op_kind::read, 200, 4, 5),
        make_op(2, 1, op_kind::read, 100, 6, 7),    // 'c' reappears
    };
    EXPECT_FALSE(check_exhaustive(h, 0).linearizable);
}

TEST(Exhaustive, PendingWriteMayTakeEffect) {
    std::vector<operation> h{
        make_op(0, 0, op_kind::write, 5, 0, no_event),  // crashed mid-write
        make_op(2, 0, op_kind::read, 5, 1, 2),
    };
    EXPECT_TRUE(check_exhaustive(h, 0).linearizable);
}

TEST(Exhaustive, PendingWriteMayVanish) {
    std::vector<operation> h{
        make_op(0, 0, op_kind::write, 5, 0, no_event),
        make_op(2, 0, op_kind::read, 0, 1, 2),
        make_op(2, 1, op_kind::read, 0, 3, 4),
    };
    EXPECT_TRUE(check_exhaustive(h, 0).linearizable);
}

TEST(Exhaustive, ReadFromFutureRejected) {
    std::vector<operation> h{
        make_op(2, 0, op_kind::read, 5, 0, 1),
        make_op(0, 0, op_kind::write, 5, 2, 3),
    };
    EXPECT_FALSE(check_exhaustive(h, 0).linearizable);
}

TEST(Exhaustive, TooLargeReportsDefect) {
    std::vector<operation> h;
    for (op_index i = 0; i < 70; ++i) {
        h.push_back(make_op(0, i, op_kind::write, 1000 + i, 2 * i, 2 * i + 1));
    }
    const auto res = check_exhaustive(h, 0);
    EXPECT_FALSE(res.ok());
}

// The same verdicts from the fast checker.

TEST(Fast, MatchesHandVerdicts) {
    std::vector<operation> good{
        make_op(0, 0, op_kind::write, 5, 0, 1),
        make_op(2, 0, op_kind::read, 5, 2, 3),
    };
    EXPECT_TRUE(check_fast(good, 0).linearizable);

    std::vector<operation> stale{
        make_op(0, 0, op_kind::write, 5, 0, 1),
        make_op(2, 0, op_kind::read, 0, 2, 3),
    };
    EXPECT_FALSE(check_fast(stale, 0).linearizable);

    std::vector<operation> inversion{
        make_op(0, 0, op_kind::write, 5, 0, 11),
        make_op(2, 0, op_kind::read, 5, 1, 2),
        make_op(3, 0, op_kind::read, 0, 3, 4),
    };
    EXPECT_FALSE(check_fast(inversion, 0).linearizable);

    std::vector<operation> reappear{
        make_op(0, 0, op_kind::write, 100, 0, 1),
        make_op(1, 0, op_kind::write, 200, 2, 3),
        make_op(2, 0, op_kind::read, 200, 4, 5),
        make_op(2, 1, op_kind::read, 100, 6, 7),
    };
    EXPECT_FALSE(check_fast(reappear, 0).linearizable);
}

TEST(Fast, RejectsDuplicateWriteValues) {
    std::vector<operation> h{
        make_op(0, 0, op_kind::write, 5, 0, 1),
        make_op(1, 0, op_kind::write, 5, 2, 3),
    };
    EXPECT_FALSE(check_fast(h, 0).ok());
}

TEST(Fast, WitnessIsValidLinearization) {
    std::vector<operation> h{
        make_op(0, 0, op_kind::write, 5, 0, 10),
        make_op(1, 0, op_kind::write, 9, 1, 4),
        make_op(2, 0, op_kind::read, 9, 2, 6),
        make_op(2, 1, op_kind::read, 5, 7, 12),
    };
    const auto res = check_fast(h, 0);
    ASSERT_TRUE(res.ok());
    ASSERT_TRUE(res.linearizable);
    EXPECT_EQ(res.witness.size(), 4u);
    // Replaying the witness satisfies the register property.
    value_t cur = 0;
    for (const operation& op : res.witness) {
        if (op.kind == op_kind::write) {
            cur = op.value;
        } else {
            EXPECT_EQ(op.value, cur);
        }
    }
}

// ---------------------------------------------------------------------------
// Random cross-validation: the fast checker must agree with the exhaustive
// one on every randomly generated small history (valid or not).
// ---------------------------------------------------------------------------

class CrossValidation : public ::testing::TestWithParam<std::uint64_t> {};

std::vector<operation> random_history(rng& gen) {
    // 2 writers, 2 readers; random interleaving of intervals; read values
    // picked from written values / initial (sometimes deliberately bogus).
    const int num_writes = static_cast<int>(gen.below(4)) + 1;
    const int num_reads = static_cast<int>(gen.below(5)) + 1;

    struct pending {
        processor_id proc;
        op_kind kind;
        value_t value;
    };
    std::vector<pending> plan;
    std::vector<value_t> values{0};
    for (int i = 0; i < num_writes; ++i) {
        const auto proc = static_cast<processor_id>(gen.below(2));
        const value_t v = 100 + i;
        values.push_back(v);
        plan.push_back({proc, op_kind::write, v});
    }
    for (int i = 0; i < num_reads; ++i) {
        const auto proc = static_cast<processor_id>(2 + gen.below(2));
        plan.push_back({proc, op_kind::read,
                        values[gen.below(values.size())]});
    }
    gen.shuffle(plan);

    // Assign intervals: per-processor sequential, random overlap across.
    std::vector<operation> ops;
    event_pos clock = 0;
    std::vector<std::vector<std::size_t>> open_slots;  // ops awaiting response
    std::map<processor_id, op_index> counters;
    std::vector<std::size_t> open;
    std::size_t next = 0;
    while (next < plan.size() || !open.empty()) {
        const bool can_open = next < plan.size();
        const bool do_open = can_open && (open.empty() || gen.chance(1, 2));
        if (do_open) {
            // Respect per-processor sequentiality: close any open op of the
            // same processor first.
            bool blocked = false;
            for (std::size_t idx : open) {
                if (ops[idx].id.processor == plan[next].proc) blocked = true;
            }
            if (!blocked) {
                operation op;
                op.id = op_id{plan[next].proc, counters[plan[next].proc]++};
                op.kind = plan[next].kind;
                op.value = plan[next].value;
                op.invoked = clock++;
                open.push_back(ops.size());
                ops.push_back(op);
                ++next;
                continue;
            }
        }
        if (!open.empty()) {
            const std::size_t pick = gen.below(open.size());
            ops[open[pick]].responded = clock++;
            open.erase(open.begin() + static_cast<std::ptrdiff_t>(pick));
        }
    }
    return ops;
}

TEST_P(CrossValidation, FastAgreesWithExhaustive) {
    rng gen(GetParam());
    for (int iter = 0; iter < 400; ++iter) {
        const std::vector<operation> h = random_history(gen);
        const auto slow = check_exhaustive(h, 0);
        const auto fast = check_fast(h, 0);
        ASSERT_TRUE(slow.ok());
        ASSERT_TRUE(fast.ok()) << *fast.defect;
        ASSERT_EQ(slow.linearizable, fast.linearizable)
            << "disagreement on seed " << GetParam() << " iter " << iter;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossValidation,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12, 13, 14, 15, 16));

// ---------------------------------------------------------------------------
// Regularity checker.
// ---------------------------------------------------------------------------

TEST(Regularity, AcceptsOverlapValues) {
    std::vector<operation> h{
        make_op(0, 0, op_kind::write, 5, 0, 10),
        make_op(2, 0, op_kind::read, 5, 1, 2),   // overlapping new value
        make_op(2, 1, op_kind::read, 0, 3, 4),   // overlapping old value (regular!)
    };
    EXPECT_TRUE(check_regular_swmr(h, 0).regular);
    // ... but that history is NOT atomic (new-old inversion).
    EXPECT_FALSE(check_exhaustive(h, 0).linearizable);
}

TEST(Regularity, RejectsStaleAfterCompletedWrite) {
    std::vector<operation> h{
        make_op(0, 0, op_kind::write, 5, 0, 1),
        make_op(2, 0, op_kind::read, 0, 2, 3),
    };
    EXPECT_FALSE(check_regular_swmr(h, 0).regular);
}

TEST(Regularity, RejectsValueFromNowhere) {
    std::vector<operation> h{
        make_op(0, 0, op_kind::write, 5, 0, 1),
        make_op(2, 0, op_kind::read, 77, 2, 3),
    };
    EXPECT_FALSE(check_regular_swmr(h, 0).regular);
}

TEST(Normalize, DropsUnobservedPendingWrite) {
    std::vector<operation> h{
        make_op(0, 0, op_kind::write, 5, 0, no_event),
        make_op(2, 0, op_kind::read, 0, 1, 2),
    };
    const auto norm = normalize_history(h, 0);
    ASSERT_TRUE(norm.ok());
    EXPECT_EQ(norm.ops.size(), 1u);
}

TEST(Normalize, KeepsObservedPendingWrite) {
    std::vector<operation> h{
        make_op(0, 0, op_kind::write, 5, 0, no_event),
        make_op(2, 0, op_kind::read, 5, 1, 2),
    };
    const auto norm = normalize_history(h, 0);
    ASSERT_TRUE(norm.ok());
    EXPECT_EQ(norm.ops.size(), 2u);
}

}  // namespace
}  // namespace bloom87
