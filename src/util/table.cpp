#include "util/table.hpp"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <sstream>

namespace bloom87 {

void table::print(std::ostream& os) const {
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
    for (const auto& r : rows_) {
        for (std::size_t i = 0; i < r.size() && i < widths.size(); ++i) {
            widths[i] = std::max(widths[i], r[i].size());
        }
    }

    auto emit = [&](const std::vector<std::string>& cells) {
        for (std::size_t i = 0; i < widths.size(); ++i) {
            const std::string& cell = i < cells.size() ? cells[i] : std::string{};
            os << "| " << cell << std::string(widths[i] - cell.size() + 1, ' ');
        }
        os << "|\n";
    };

    emit(header_);
    for (std::size_t i = 0; i < widths.size(); ++i) {
        os << "|" << std::string(widths[i] + 2, '-');
    }
    os << "|\n";
    for (const auto& r : rows_) emit(r);
}

std::string table::to_string() const {
    std::ostringstream oss;
    print(oss);
    return oss.str();
}

std::string fixed(double value, int digits) {
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(digits) << value;
    return oss.str();
}

std::string with_commas(std::uint64_t value) {
    std::string digits = std::to_string(value);
    std::string out;
    out.reserve(digits.size() + digits.size() / 3);
    std::size_t seen = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (seen != 0 && seen % 3 == 0) out.push_back(',');
        out.push_back(*it);
        ++seen;
    }
    std::reverse(out.begin(), out.end());
    return out;
}

void print_banner(std::ostream& os, std::string_view experiment_id,
                  std::string_view title) {
    os << "\n================================================================\n"
       << "[" << experiment_id << "] " << title << "\n"
       << "================================================================\n";
}

}  // namespace bloom87
